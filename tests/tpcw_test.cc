#include <gtest/gtest.h>

#include <map>

#include "tpcw/generator.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::tpcw {
namespace {

TEST(TpcwSchemaTest, AllRelationsPresent) {
  sql::Catalog cat = BuildCatalog();
  for (const char* rel :
       {"Country", "Address", "Author", "Customer", "Item", "Orders",
        "Order_line", "CC_Xacts", "Shopping_cart", "Shopping_cart_line",
        "Orders_tmp"}) {
    EXPECT_NE(cat.FindRelation(rel), nullptr) << rel;
  }
}

TEST(TpcwSchemaTest, ForeignKeysWired) {
  sql::Catalog cat = BuildCatalog();
  EXPECT_NE(cat.FindForeignKey("Orders", "Customer"), nullptr);
  EXPECT_NE(cat.FindForeignKey("Order_line", "Orders"), nullptr);
  EXPECT_NE(cat.FindForeignKey("Order_line", "Item"), nullptr);
  EXPECT_NE(cat.FindForeignKey("Item", "Author"), nullptr);
  EXPECT_NE(cat.FindForeignKey("Customer", "Address"), nullptr);
  EXPECT_NE(cat.FindForeignKey("Address", "Country"), nullptr);
  // Orders_tmp intentionally has no FK metadata.
  EXPECT_EQ(cat.FindRelation("Orders_tmp")->foreign_keys.size(), 0u);
}

TEST(TpcwSchemaTest, BaseIndexesExist) {
  sql::Catalog cat = BuildCatalog();
  EXPECT_NE(cat.FindIndex("ix_customer_uname"), nullptr);
  EXPECT_TRUE(cat.FindIndex("ix_customer_uname")->unique);
  EXPECT_NE(cat.FindIndex("ix_ol_o_id"), nullptr);
}

TEST(TpcwWorkloadTest, AllStatementsParse) {
  sql::Workload w = BuildWorkload();
  EXPECT_EQ(w.statements.size(), 11u + 13u + 8u);
  for (const std::string& id : JoinQueryIds()) {
    ASSERT_NE(w.Find(id), nullptr) << id;
    EXPECT_TRUE(sql::IsReadStatement(w.Find(id)->ast)) << id;
  }
  for (const std::string& id : WriteStatementIds()) {
    ASSERT_NE(w.Find(id), nullptr) << id;
    EXPECT_FALSE(sql::IsReadStatement(w.Find(id)->ast)) << id;
  }
}

TEST(TpcwGeneratorTest, CardinalitiesFollowPaper) {
  ScaleConfig cfg;
  cfg.num_customers = 100;
  EXPECT_EQ(cfg.num_items(), 1000);
  EXPECT_EQ(cfg.num_orders(), 1000);  // Customer:Orders = 1:10
  EXPECT_EQ(cfg.num_authors(), 250);
  EXPECT_EQ(cfg.num_addresses(), 200);
  EXPECT_EQ(cfg.num_countries(), 92);

  std::map<std::string, size_t> counts;
  ASSERT_TRUE(GenerateDatabase(cfg, [&](const std::string& rel,
                                        const exec::Tuple&) {
                counts[rel] += 1;
                return Status::Ok();
              })
                  .ok());
  EXPECT_EQ(counts["Customer"], 100u);
  EXPECT_EQ(counts["Item"], 1000u);
  EXPECT_EQ(counts["Orders"], 1000u);
  EXPECT_EQ(counts["CC_Xacts"], 1000u);
  EXPECT_GE(counts["Order_line"], 1000u);
  EXPECT_LE(counts["Order_line"], 5000u);
  EXPECT_EQ(counts["Country"], 92u);
  EXPECT_EQ(counts["Orders_tmp"], 1000u);  // min(3333, orders)
}

TEST(TpcwGeneratorTest, DeterministicAcrossRuns) {
  ScaleConfig cfg;
  cfg.num_customers = 20;
  std::vector<std::string> first, second;
  auto capture = [](std::vector<std::string>* out) {
    return [out](const std::string& rel, const exec::Tuple& t) {
      std::string row = rel;
      for (const auto& [k, v] : t) row += "|" + k + "=" + v.ToString();
      out->push_back(std::move(row));
      return Status::Ok();
    };
  };
  ASSERT_TRUE(GenerateDatabase(cfg, capture(&first)).ok());
  ASSERT_TRUE(GenerateDatabase(cfg, capture(&second)).ok());
  EXPECT_EQ(first, second);
}

TEST(TpcwGeneratorTest, TuplesMatchSchema) {
  sql::Catalog cat = BuildCatalog();
  ScaleConfig cfg;
  cfg.num_customers = 10;
  ASSERT_TRUE(GenerateDatabase(cfg, [&](const std::string& rel,
                                        const exec::Tuple& t) {
                const sql::RelationDef* def = cat.FindRelation(rel);
                EXPECT_NE(def, nullptr) << rel;
                for (const auto& [col, value] : t) {
                  EXPECT_TRUE(def->HasColumn(col)) << rel << "." << col;
                }
                for (const std::string& pk : def->primary_key) {
                  EXPECT_TRUE(t.contains(pk)) << rel << " missing " << pk;
                }
                return Status::Ok();
              })
                  .ok());
}

class ParamProviderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParamProviderTest, ParamsMatchStatementArity) {
  ScaleConfig cfg;
  cfg.num_customers = 50;
  ParamProvider params(cfg);
  sql::Workload w = BuildWorkload();
  const sql::WorkloadStatement* stmt = w.Find(GetParam());
  ASSERT_NE(stmt, nullptr);
  for (int i = 0; i < 5; ++i) {
    auto p = params.ParamsFor(GetParam());
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_EQ(static_cast<int>(p->size()), sql::CountParams(stmt->ast))
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStatements, ParamProviderTest,
    ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9",
                      "Q10", "Q11", "W1", "W2", "W3", "W4", "W5", "W6", "W7",
                      "W8", "W9", "W10", "W11", "W12", "W13", "S1", "S2",
                      "S3", "S4", "S5", "S6", "S7", "S8"));

TEST(ParamProviderTest, UnknownStatementFails) {
  ScaleConfig cfg;
  ParamProvider params(cfg);
  EXPECT_FALSE(params.ParamsFor("Z9").ok());
}

TEST(ParamProviderTest, FreshInsertIdsNeverCollide) {
  ScaleConfig cfg;
  ParamProvider params(cfg);
  std::set<int64_t> ids;
  for (int i = 0; i < 100; ++i) {
    auto p = params.ParamsFor("W1");
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(ids.insert((*p)[0].as_int()).second);
    EXPECT_GT((*p)[0].as_int(), cfg.num_orders());
  }
}

}  // namespace
}  // namespace synergy::tpcw
