#include "txn/mvcc.h"

#include <gtest/gtest.h>

namespace synergy::txn {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.CreateTable({.name = "t"}).ok());
    mvcc_ = std::make_unique<MvccManager>(&cluster_);
  }

  Status WriteInTxn(hbase::Session& s, MvccTxn& txn, const std::string& key,
                    const std::string& value) {
    txn.write_set.push_back("t/" + key);
    return cluster_.Put(s, "t", key, {{"v", value}}, txn.txid);
  }

  std::string ReadInTxn(hbase::Session& s, const MvccTxn& txn,
                        const std::string& key) {
    s.SetReadView(txn.View());
    auto row = cluster_.Get(s, "t", key);
    s.ClearReadView();
    if (!row.ok()) return "<missing>";
    auto it = row->columns.find("v");
    return it == row->columns.end() ? "<missing>" : it->second;
  }

  hbase::Cluster cluster_;
  std::unique_ptr<MvccManager> mvcc_;
};

TEST_F(MvccTest, CommitMakesWritesVisible) {
  hbase::Session s(&cluster_);
  auto t1 = mvcc_->Start(s);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(WriteInTxn(s, *t1, "k", "v1").ok());
  ASSERT_TRUE(mvcc_->Commit(s, *t1).ok());

  auto t2 = mvcc_->Start(s);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(ReadInTxn(s, *t2, "k"), "v1");
  ASSERT_TRUE(mvcc_->Commit(s, *t2).ok());
}

TEST_F(MvccTest, InFlightWritesInvisibleToConcurrentReaders) {
  hbase::Session s(&cluster_);
  auto writer = mvcc_->Start(s);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(WriteInTxn(s, *writer, "k", "dirty").ok());

  auto reader = mvcc_->Start(s);  // started while writer in flight
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(ReadInTxn(s, *reader, "k"), "<missing>");
  ASSERT_TRUE(mvcc_->Commit(s, *writer).ok());
  // Snapshot isolation: still invisible to the already-started reader.
  EXPECT_EQ(ReadInTxn(s, *reader, "k"), "<missing>");
}

TEST_F(MvccTest, WritersStartedAfterCommitSeeTheWrite) {
  hbase::Session s(&cluster_);
  auto w = mvcc_->Start(s);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(WriteInTxn(s, *w, "k", "v").ok());
  ASSERT_TRUE(mvcc_->Commit(s, *w).ok());
  auto r = mvcc_->Start(s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ReadInTxn(s, *r, "k"), "v");
}

TEST_F(MvccTest, WriteWriteConflictAborts) {
  hbase::Session s(&cluster_);
  auto t1 = mvcc_->Start(s);
  auto t2 = mvcc_->Start(s);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(WriteInTxn(s, *t1, "k", "a").ok());
  ASSERT_TRUE(WriteInTxn(s, *t2, "k", "b").ok());
  ASSERT_TRUE(mvcc_->Commit(s, *t2).ok());
  EXPECT_EQ(mvcc_->Commit(s, *t1).code(), StatusCode::kAborted);
  EXPECT_EQ(mvcc_->InvalidCount(), 1u);
}

TEST_F(MvccTest, DisjointWriteSetsBothCommit) {
  hbase::Session s(&cluster_);
  auto t1 = mvcc_->Start(s);
  auto t2 = mvcc_->Start(s);
  ASSERT_TRUE(WriteInTxn(s, *t1, "a", "1").ok());
  ASSERT_TRUE(WriteInTxn(s, *t2, "b", "2").ok());
  EXPECT_TRUE(mvcc_->Commit(s, *t1).ok());
  EXPECT_TRUE(mvcc_->Commit(s, *t2).ok());
}

TEST_F(MvccTest, AbortedWritesStayInvisible) {
  hbase::Session s(&cluster_);
  auto w = mvcc_->Start(s);
  ASSERT_TRUE(WriteInTxn(s, *w, "k", "ghost").ok());
  ASSERT_TRUE(mvcc_->Abort(s, *w).ok());
  auto r = mvcc_->Start(s);
  EXPECT_EQ(ReadInTxn(s, *r, "k"), "<missing>");
  EXPECT_EQ(mvcc_->InvalidCount(), 1u);
}

TEST_F(MvccTest, CommitUnknownTxnFails) {
  hbase::Session s(&cluster_);
  MvccTxn bogus;
  bogus.txid = 99999;
  EXPECT_EQ(mvcc_->Commit(s, bogus).code(), StatusCode::kFailedPrecondition);
}

TEST_F(MvccTest, StartCommitChargesTheMvccTax) {
  hbase::Session s(&cluster_);
  auto t = mvcc_->Start(s);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(mvcc_->Commit(s, *t).ok());
  const auto& m = cluster_.cost_model();
  // The paper reports Tephra adding ~800-900 ms per statement.
  const double total_ms = s.meter().millis();
  EXPECT_GE(total_ms, 600.0);
  EXPECT_LE(total_ms, 1000.0);
  EXPECT_NEAR(total_ms * 1000.0,
              m.mvcc_start_us + m.mvcc_conflict_check_us + m.mvcc_commit_us,
              1.0);
}

TEST_F(MvccTest, InFlightCountTracksLifecycle) {
  hbase::Session s(&cluster_);
  EXPECT_EQ(mvcc_->InFlightCount(), 0u);
  auto t = mvcc_->Start(s);
  EXPECT_EQ(mvcc_->InFlightCount(), 1u);
  ASSERT_TRUE(mvcc_->Commit(s, *t).ok());
  EXPECT_EQ(mvcc_->InFlightCount(), 0u);
}

}  // namespace
}  // namespace synergy::txn
