// CI smoke: drive a mixed read/write workload through the full Synergy
// stack, dump the registry snapshot, and validate (a) the JSON rendering is
// well-formed against a minimal recursive-descent checker and (b) every
// required metric family from each instrumented layer is present with a
// sane value. This is the "metrics endpoint" contract the benches embed in
// their committed result rows.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>

#include "company_fixture.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "synergy/synergy_system.h"

namespace synergy::core {
namespace {

// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
// literals). Not a full parser — just enough to reject truncated or
// mis-quoted output without external dependencies.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a":1,"b":{"c":[1,2.5,-3e2]},"d":"x\"y"})")
                  .Valid());
  EXPECT_TRUE(JsonChecker("{}").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1)").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":})").Valid());
  EXPECT_FALSE(JsonChecker(R"({'a':1})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1} trailing)").Valid());
}

TEST(ObsSnapshotSmokeTest, MixedWorkloadSnapshotIsWellFormedAndComplete) {
  hbase::Cluster cluster;
  // Admission control registers its families lazily (off by default);
  // enable it so the smoke covers that layer too.
  cluster.ConfigureAdmission(hbase::AdmissionConfig{.enabled = true});
  SynergySystem system(&cluster,
                       SynergyConfig{.roots = testing::CompanyRoots()});
  ASSERT_TRUE(
      system.Build(testing::CompanyCatalog(), testing::CompanyWorkload())
          .ok());
  ASSERT_TRUE(system.CreateStorage().ok());

  hbase::Session s(&cluster);
  for (int a = 1; a <= 4; ++a) {
    ASSERT_TRUE(system
                    .Load(s, "Address",
                          {{"AID", Value(a)},
                           {"Street", Value("st" + std::to_string(a))},
                           {"City", Value("c")},
                           {"Zip", Value("z")}})
                    .ok());
  }
  for (int d = 1; d <= 2; ++d) {
    ASSERT_TRUE(system
                    .Load(s, "Department",
                          {{"DNo", Value(d)}, {"DName", Value("dept")}})
                    .ok());
  }
  for (int e = 1; e <= 3; ++e) {
    ASSERT_TRUE(system
                    .Load(s, "Employee",
                          {{"EID", Value(e)},
                           {"EName", Value("emp")},
                           {"EHome_AID", Value(e)},
                           {"EOffice_AID", Value(4)},
                           {"E_DNo", Value(e % 2 + 1)}})
                    .ok());
  }

  // Mixed workload: reads through the rewritten views, root-locked writes
  // through the txn layer (WAL, locks, slave dispatch).
  const sql::WorkloadStatement* w1 = system.workload().Find("W1");
  ASSERT_NE(w1, nullptr);
  for (int e = 1; e <= 3; ++e) {
    const std::vector<Value> params{Value(e)};
    ASSERT_TRUE(system
                    .ExecuteRead(s, std::get<sql::SelectStatement>(w1->ast),
                                 params)
                    .ok());
  }
  auto insert = sql::MustParse(
      "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)");
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        system.ExecuteWrite(s, insert, {Value(i), Value(9), Value(10 + i)})
            .ok());
  }

  const obs::RegistrySnapshot snap = cluster.metrics().Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;

  // One family per instrumented layer must be present and moving.
  const char* required_counters[] = {
      "hbase_rpcs_total",          "hbase_admission_admitted_total",
      "client_retries_total",      "txn_wal_appends_total",
      "txn_lock_acquires_total",   "txn_slave_commits_total",
      "exec_statements_total",     "synergy_reads_total",
      "synergy_writes_total",      "synergy_view_rows_updated_total",
      "hbase_failover_heartbeat_rounds_total",
  };
  for (const char* name : required_counters) {
    EXPECT_TRUE(snap.HasCounter(name)) << "missing family: " << name;
    EXPECT_NE(json.find('"' + std::string(name) + '"'), std::string::npos);
  }
  EXPECT_GT(snap.CounterValue("hbase_rpcs_total"), 0u);
  EXPECT_EQ(snap.CounterValue("synergy_reads_total"), 3u);
  EXPECT_EQ(snap.CounterValue("synergy_writes_total"), 3u);
  EXPECT_EQ(snap.CounterValue("txn_slave_commits_total"), 3u);
  EXPECT_GE(snap.CounterValue("txn_wal_appends_total"), 3u);

  bool has_stmt_histogram = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "exec_statement_virtual_us") {
      has_stmt_histogram = true;
      EXPECT_GE(h.summary.count, 3u);
      EXPECT_GT(h.summary.sum, 0.0);
    }
  }
  EXPECT_TRUE(has_stmt_histogram);

  // The Prometheus rendering carries the same families.
  const std::string prom = snap.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE hbase_rpcs_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE exec_statement_virtual_us summary"),
            std::string::npos);

  // Dump the snapshot for the CI log (the smoke job greps this output).
  std::printf("=== registry snapshot (JSON) ===\n%s\n", json.c_str());
}

}  // namespace
}  // namespace synergy::core
