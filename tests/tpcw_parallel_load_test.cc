// Parallel TPC-W loader: thread-count invariance, cardinalities, and
// end-to-end Setup through a real system.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/value.h"
#include "systems/synergy_wrapper.h"
#include "tpcw/generator.h"

namespace synergy::tpcw {
namespace {

/// Canonical string form of a tuple for set comparison.
std::string Canonical(const std::string& relation, const exec::Tuple& tuple) {
  std::string out = relation + "|";
  // exec::Tuple is an ordered map, so iteration order is deterministic.
  for (const auto& [col, value] : tuple) {
    out += col + "=" + value.ToString() + ";";
  }
  return out;
}

std::multiset<std::string> CollectParallel(const ScaleConfig& cfg) {
  std::mutex mu;
  std::multiset<std::string> rows;
  Status s = GenerateDatabaseParallel(
      cfg, [&](int, const std::string& relation, const exec::Tuple& tuple) {
        std::lock_guard lock(mu);
        rows.insert(Canonical(relation, tuple));
        return Status::Ok();
      });
  EXPECT_TRUE(s.ok()) << s.message();
  return rows;
}

TEST(ParallelLoadTest, DataIsIndependentOfThreadCount) {
  ScaleConfig cfg;
  cfg.num_customers = 300;

  cfg.load_threads = 1;
  const std::multiset<std::string> one = CollectParallel(cfg);
  cfg.load_threads = 4;
  const std::multiset<std::string> four = CollectParallel(cfg);
  cfg.load_threads = 7;
  const std::multiset<std::string> seven = CollectParallel(cfg);

  EXPECT_EQ(one.size(), four.size());
  EXPECT_TRUE(one == four) << "4-thread load generated different data";
  EXPECT_TRUE(one == seven) << "7-thread load generated different data";
}

TEST(ParallelLoadTest, CardinalitiesMatchScaleConfig) {
  ScaleConfig cfg;
  cfg.num_customers = 200;
  cfg.load_threads = 3;

  std::mutex mu;
  std::map<std::string, int64_t> counts;
  Status s = GenerateDatabaseParallel(
      cfg, [&](int, const std::string& relation, const exec::Tuple&) {
        std::lock_guard lock(mu);
        ++counts[relation];
        return Status::Ok();
      });
  ASSERT_TRUE(s.ok()) << s.message();

  EXPECT_EQ(counts["Country"], cfg.num_countries());
  EXPECT_EQ(counts["Address"], cfg.num_addresses());
  EXPECT_EQ(counts["Author"], cfg.num_authors());
  EXPECT_EQ(counts["Customer"], cfg.num_customers);
  EXPECT_EQ(counts["Item"], cfg.num_items());
  EXPECT_EQ(counts["Orders"], cfg.num_orders());
  EXPECT_EQ(counts["CC_Xacts"], cfg.num_orders());
  EXPECT_EQ(counts["Shopping_cart"], cfg.num_carts());
  EXPECT_EQ(counts["Orders_tmp"], cfg.num_orders_tmp());
  // 1..5 lines per order, ids within the reserved range.
  EXPECT_GE(counts["Order_line"], cfg.num_orders());
  EXPECT_LE(counts["Order_line"], cfg.max_order_line_id());
}

TEST(ParallelLoadTest, OrderLineIdsAreUniqueAndInRange) {
  ScaleConfig cfg;
  cfg.num_customers = 150;
  cfg.load_threads = 4;

  std::mutex mu;
  std::set<int64_t> ol_ids;
  bool dup = false;
  Status s = GenerateDatabaseParallel(
      cfg, [&](int, const std::string& relation, const exec::Tuple& tuple) {
        if (relation != "Order_line") return Status::Ok();
        std::lock_guard lock(mu);
        const int64_t id = tuple.at("ol_id").as_int();
        if (!ol_ids.insert(id).second) dup = true;
        EXPECT_GE(id, 1);
        EXPECT_LE(id, cfg.max_order_line_id());
        return Status::Ok();
      });
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_FALSE(dup) << "derived ol_ids collided";
}

TEST(ParallelLoadTest, SynergySetupLoadsInParallelAndServesQueries) {
  systems::SynergyWrapper system;
  ScaleConfig scale;
  scale.num_customers = 60;
  scale.load_threads = 4;
  ASSERT_TRUE(system.Setup(scale).ok());

  // A join read over loaded data and a write both succeed.
  StatusOr<systems::StatementResult> q1 =
      system.Execute("Q1", {Value(int64_t{1})});
  ASSERT_TRUE(q1.ok()) << q1.status().message();
  EXPECT_TRUE(q1->supported);

  StatusOr<systems::StatementResult> w6 =
      system.Execute("W6", {Value(int64_t{999999}), Value(int64_t{20171001})});
  ASSERT_TRUE(w6.ok()) << w6.status().message();
}

}  // namespace
}  // namespace synergy::tpcw
