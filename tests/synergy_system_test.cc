// End-to-end Synergy system tests on the Company schema: view maintenance
// consistency, locking, write procedures and failover.
#include "synergy/synergy_system.h"

#include <gtest/gtest.h>

#include "company_fixture.h"
#include "testing/fault_injector.h"

namespace synergy::core {
namespace {

class SynergySystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots()});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    Populate();
  }

  void Populate() {
    hbase::Session s(&cluster_);
    for (int a = 1; a <= 4; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("st" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)},
                              {"DName", Value("dept" + std::to_string(d))}})
                      .ok());
    }
    for (int e = 1; e <= 3; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("emp" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(4)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
    for (int p = 1; p <= 2; ++p) {
      ASSERT_TRUE(system_
                      ->Load(s, "Project",
                             {{"PNo", Value(p)},
                              {"PName", Value("proj")},
                              {"P_DNo", Value(p)}})
                      .ok());
    }
    // Employee e works on projects 1..e.
    for (int e = 1; e <= 3; ++e) {
      for (int p = 1; p <= (e % 2) + 1; ++p) {
        ASSERT_TRUE(system_
                        ->Load(s, "Works_On",
                               {{"WO_EID", Value(e)},
                                {"WO_PNo", Value(p)},
                                {"Hours", Value(10 * e + p)}})
                        .ok());
      }
    }
  }

  exec::QueryResult RunWorkloadQuery(const std::string& id,
                                     std::vector<Value> params) {
    const sql::WorkloadStatement* stmt = system_->workload().Find(id);
    EXPECT_NE(stmt, nullptr);
    hbase::Session s(&cluster_);
    auto result = system_->ExecuteRead(
        s, std::get<sql::SelectStatement>(stmt->ast), params);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(*result) : exec::QueryResult{};
  }

  size_t ViewRowCount(const std::string& view) {
    // Compact so tombstoned rows don't inflate the approximate count.
    cluster_.MajorCompactAll();
    return system_->adapter()->RowCount(view);
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
};

TEST_F(SynergySystemTest, BuildSelectsViewsAndRewrites) {
  EXPECT_NE(system_->catalog().FindView("Address-Employee"), nullptr);
  EXPECT_NE(system_->catalog().FindView("Employee-Works_On"), nullptr);
  EXPECT_EQ(system_->rewritten_ids().size(), 3u);
}

TEST_F(SynergySystemTest, LoadMaintainsViews) {
  // 3 employees with valid home addresses -> 3 Address-Employee rows.
  EXPECT_EQ(ViewRowCount("Address-Employee"), 3u);
  // Works_On rows: e1 -> p1,p2; e2 -> p1; e3 -> p1,p2 = 5 rows.
  EXPECT_EQ(ViewRowCount("Employee-Works_On"), 5u);
}

TEST_F(SynergySystemTest, RewrittenQueryReturnsJoinResult) {
  auto r = RunWorkloadQuery("W1", {Value(2)});
  ASSERT_EQ(r.row_count, 1u);
  // The view row carries both Employee and Address attributes.
  auto has_col = [&](const std::string& name) {
    return std::find(r.columns.begin(), r.columns.end(), name) !=
           r.columns.end();
  };
  EXPECT_TRUE(has_col("EName"));
  EXPECT_TRUE(has_col("Street"));
}

TEST_F(SynergySystemTest, W2JoinsViewWithDepartment) {
  auto r = RunWorkloadQuery("W2", {Value(1)});
  // Department 1: employees with E_DNo==1 -> e2 (2%2+1=1? e1:1%2+1=2,
  // e2:0+1=1, e3:1+1=2) -> employee 2, works on 1 project.
  EXPECT_EQ(r.row_count, 1u);
}

TEST_F(SynergySystemTest, W3FiltersOnViewIndex) {
  auto r = RunWorkloadQuery("W3", {Value(11)});  // e1, p1 -> Hours 11
  EXPECT_EQ(r.row_count, 1u);
}

TEST_F(SynergySystemTest, InsertWriteMaintainsViewsTransactionally) {
  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse(
      "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)");
  auto result =
      system_->ExecuteWrite(s, stmt, {Value(2), Value(2), Value(99)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(ViewRowCount("Employee-Works_On"), 6u);
  auto r = RunWorkloadQuery("W3", {Value(99)});
  EXPECT_EQ(r.row_count, 1u);
}

TEST_F(SynergySystemTest, DeleteWriteRemovesViewRows) {
  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse(
      "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?");
  ASSERT_TRUE(system_->ExecuteWrite(s, stmt, {Value(1), Value(1)}).ok());
  EXPECT_EQ(ViewRowCount("Employee-Works_On"), 4u);
  EXPECT_EQ(RunWorkloadQuery("W3", {Value(11)}).row_count, 0u);
}

TEST_F(SynergySystemTest, UpdateWritePropagatesToViews) {
  hbase::Session s(&cluster_);
  // Employee is a mid-path member of both views.
  auto stmt = sql::MustParse("UPDATE Employee SET EName = ? WHERE EID = ?");
  ASSERT_TRUE(
      system_->ExecuteWrite(s, stmt, {Value("renamed"), Value(1)}).ok());
  auto r = RunWorkloadQuery("W1", {Value(1)});
  ASSERT_EQ(r.row_count, 1u);
  bool found = false;
  for (size_t i = 0; i < r.columns.size(); ++i) {
    if (r.columns[i] == "EName") {
      EXPECT_EQ(r.rows[0][i], Value("renamed"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Both Works_On view rows of employee 1 updated too.
  auto r3 = RunWorkloadQuery("W3", {Value(11)});
  ASSERT_EQ(r3.row_count, 1u);
}

TEST_F(SynergySystemTest, ViewsStayConsistentWithBaseJoin) {
  // Property: view contents == join of base tables, after a mix of writes.
  hbase::Session s(&cluster_);
  ASSERT_TRUE(system_
                  ->ExecuteWrite(s,
                                 sql::MustParse("INSERT INTO Works_On "
                                                "(WO_EID, WO_PNo, Hours) "
                                                "VALUES (?, ?, ?)"),
                                 {Value(3), Value(9), Value(7)})
                  .ok());
  ASSERT_TRUE(system_
                  ->ExecuteWrite(s,
                                 sql::MustParse("DELETE FROM Works_On WHERE "
                                                "WO_EID = ? AND WO_PNo = ?"),
                                 {Value(2), Value(1)})
                  .ok());
  ASSERT_TRUE(system_
                  ->ExecuteWrite(s,
                                 sql::MustParse("UPDATE Employee SET EName = ? "
                                                "WHERE EID = ?"),
                                 {Value("zz"), Value(3)})
                  .ok());
  // Compare view scan vs base join (computed through the same executor but
  // over base tables).
  auto view_scan = sql::MustParse("SELECT * FROM Employee-Works_On");
  // Hyphenated names do not lex; query the adapter row count instead and
  // cross-check via the base join.
  (void)view_scan;
  exec::Executor executor(system_->adapter());
  auto base_join = sql::MustParse(
      "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID");
  exec::ExecOptions opts;
  opts.force_hash_join = true;
  auto base = executor.ExecuteSelect(
      s, std::get<sql::SelectStatement>(base_join), {}, opts);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->row_count, ViewRowCount("Employee-Works_On"));
}

TEST_F(SynergySystemTest, LockSpecDerivedThroughFkChain) {
  hbase::Session s(&cluster_);
  // Works_On row of employee 2: chain WO -> E(2) -> Address(AID=2).
  auto lock = system_->DeriveLockSpec(
      s, "Works_On",
      {{"WO_EID", Value(2)}, {"WO_PNo", Value(1)}, {"Hours", Value(21)}});
  ASSERT_TRUE(lock.ok());
  ASSERT_TRUE(lock->has_value());
  EXPECT_EQ((*lock)->root_relation, "Address");
  EXPECT_EQ((*lock)->root_key, exec::EncodePkKeyFromValues({Value(2)}));
}

TEST_F(SynergySystemTest, RootWriteLocksItsOwnKey) {
  hbase::Session s(&cluster_);
  auto lock = system_->DeriveLockSpec(
      s, "Address",
      {{"AID", Value(9)}, {"Street", Value("x")}});
  ASSERT_TRUE(lock.ok());
  ASSERT_TRUE(lock->has_value());
  EXPECT_EQ((*lock)->root_relation, "Address");
}

TEST_F(SynergySystemTest, InsertIntoRootCreatesLockEntry) {
  hbase::Session s(&cluster_);
  auto stmt = sql::MustParse(
      "INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)");
  ASSERT_TRUE(system_
                  ->ExecuteWrite(
                      s, stmt,
                      {Value(50), Value("s"), Value("c"), Value("z")})
                  .ok());
  txn::LockManager locks(&cluster_);
  auto held =
      locks.IsHeld(s, "Address", exec::EncodePkKeyFromValues({Value(50)}));
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);  // entry exists but lock is free
}

TEST_F(SynergySystemTest, MultiRowWriteRejected) {
  hbase::Session s(&cluster_);
  // Missing WO_PNo key attribute -> would affect multiple rows.
  auto stmt = sql::MustParse("DELETE FROM Works_On WHERE WO_EID = ?");
  auto result = system_->ExecuteWrite(s, stmt, {Value(1)});
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SynergySystemTest, WalReplayAfterCrashRestoresWrite) {
  hbase::Session s(&cluster_);
  fault::FaultInjector faults(7);
  system_->SetFaultInjector(&faults);
  faults.Arm(fault::FaultPoint::kCrashBeforeExecute);
  auto stmt = sql::MustParse(
      "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)");
  auto result = system_->ExecuteWrite(s, stmt, {Value(3), Value(7), Value(1)});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ViewRowCount("Employee-Works_On"), 5u);  // not applied yet
  ASSERT_TRUE(system_->txn_layer()
                  ->DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string& payload) {
                        return system_->ReplayPayload(rs, payload);
                      })
                  .ok());
  system_->SetFaultInjector(nullptr);
  EXPECT_EQ(ViewRowCount("Employee-Works_On"), 6u);
  EXPECT_EQ(RunWorkloadQuery("W3", {Value(1)}).row_count, 1u);
}

TEST_F(SynergySystemTest, SingleLockHeldPerWrite) {
  // Structural invariant behind the paper's design: every relation belongs
  // to at most one rooted tree, so DeriveLockSpec returns at most one lock.
  hbase::Session s(&cluster_);
  for (const char* rel : {"Employee", "Works_On", "Dependent", "Project",
                          "Department_Location"}) {
    int trees_containing = 0;
    for (const RootedTree& t : system_->trees()) {
      if (t.Contains(rel)) ++trees_containing;
    }
    EXPECT_LE(trees_containing, 1) << rel;
  }
}

}  // namespace
}  // namespace synergy::core
