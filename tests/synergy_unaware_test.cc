// Schema-unaware (tuning-advisor-style) selector tests.
#include "synergy/unaware_selector.h"

#include <gtest/gtest.h>

#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::core {
namespace {

size_t TpcwRows(const std::string& rel) {
  static const std::map<std::string, size_t> kCounts = {
      {"Customer", 2000},        {"Item", 20000},   {"Author", 5000},
      {"Address", 4000},         {"Country", 92},   {"Orders", 20000},
      {"Order_line", 60000},     {"CC_Xacts", 20000},
      {"Shopping_cart", 200},    {"Shopping_cart_line", 400},
      {"Orders_tmp", 3333}};
  auto it = kCounts.find(rel);
  return it == kCounts.end() ? 0 : it->second;
}

TEST(UnawareSelectorTest, EnumeratesChainsFromQueries) {
  sql::Catalog cat = tpcw::BuildCatalog();
  sql::Workload w = tpcw::BuildWorkload();
  auto candidates = EnumerateUnawareCandidates(w, cat, TpcwRows);
  EXPECT_FALSE(candidates.empty());
  std::set<std::string> names;
  for (const auto& c : candidates) names.insert(c.view.Name());
  // Q3's chain crosses Synergy's tree boundary — the unaware selector does
  // not care about rooted trees.
  EXPECT_TRUE(names.contains("Country-Address-Customer"));
  EXPECT_TRUE(names.contains("Author-Item"));
  for (const auto& c : candidates) {
    EXPECT_GE(c.view.relations.size(), 2u);
    EXPECT_GT(c.storage_bytes, 0.0);
  }
}

TEST(UnawareSelectorTest, BenefitAccumulatesAcrossQueries) {
  sql::Catalog cat = tpcw::BuildCatalog();
  sql::Workload w = tpcw::BuildWorkload();
  auto candidates = EnumerateUnawareCandidates(w, cat, TpcwRows);
  double author_item_benefit = 0;
  for (const auto& c : candidates) {
    if (c.view.Name() == "Author-Item") author_item_benefit = c.benefit;
  }
  // Q4, Q5, Q6 (and Q10's sub-chain) all contribute.
  EXPECT_GT(author_item_benefit, 0.0);
}

TEST(UnawareSelectorTest, BudgetLimitsSelection) {
  sql::Catalog cat = tpcw::BuildCatalog();
  sql::Workload w = tpcw::BuildWorkload();
  UnawareOptions tight;
  tight.storage_budget_fraction = 0.01;
  auto few = SelectViewsUnaware(w, cat, TpcwRows, tight);
  UnawareOptions loose;
  loose.storage_budget_fraction = 10.0;
  auto many = SelectViewsUnaware(w, cat, TpcwRows, loose);
  EXPECT_LE(few.size(), many.size());
  // With an effectively unlimited budget, the order-line-grain chains are
  // selected too (the heavy-maintenance choice the paper criticizes).
  std::set<std::string> names;
  for (const auto& v : many) names.insert(v.Name());
  EXPECT_TRUE(names.contains("Author-Item-Order_line") ||
              names.contains("Item-Order_line"));
}

TEST(UnawareSelectorTest, DefaultBudgetSelectsSmallHighValueViews) {
  sql::Catalog cat = tpcw::BuildCatalog();
  sql::Workload w = tpcw::BuildWorkload();
  auto selected = SelectViewsUnaware(w, cat, TpcwRows);
  ASSERT_FALSE(selected.empty());
  // The order-line-grain monsters must be rejected at the default budget.
  for (const auto& v : selected) {
    EXPECT_NE(v.relations.back(), "Order_line") << v.Name();
  }
}

TEST(UnawareSelectorTest, EstimateRelationBytesScalesWithRows) {
  sql::Catalog cat = tpcw::BuildCatalog();
  const sql::RelationDef* item = cat.FindRelation("Item");
  EXPECT_GT(EstimateRelationBytes(*item, 1000),
            EstimateRelationBytes(*item, 100));
  EXPECT_EQ(EstimateRelationBytes(*item, 0), 0.0);
}

TEST(UnawareSelectorTest, DeterministicSelection) {
  sql::Catalog cat = tpcw::BuildCatalog();
  sql::Workload w = tpcw::BuildWorkload();
  auto a = SelectViewsUnaware(w, cat, TpcwRows);
  auto b = SelectViewsUnaware(w, cat, TpcwRows);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Name(), b[i].Name());
  }
}

}  // namespace
}  // namespace synergy::core
