#include "newsql/voltdb_sim.h"

#include <gtest/gtest.h>

#include "tpcw/generator.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::newsql {
namespace {

class VoltSupportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = tpcw::BuildCatalog();
    workload_ = tpcw::BuildWorkload();
    schemes_ = TpcwSchemes();
  }

  bool SupportedAnywhere(const std::string& id) {
    const auto& sel =
        std::get<sql::SelectStatement>(workload_.Find(id)->ast);
    for (const PartitionScheme& scheme : schemes_) {
      if (IsSupported(sel, catalog_, scheme)) return true;
    }
    return false;
  }

  sql::Catalog catalog_;
  sql::Workload workload_;
  std::vector<PartitionScheme> schemes_;
};

TEST_F(VoltSupportTest, PaperFig12SupportMatrix) {
  // Fig. 12: Q3, Q7, Q9, Q10 are not supported in VoltDB.
  for (const char* id : {"Q3", "Q7", "Q9", "Q10"}) {
    EXPECT_FALSE(SupportedAnywhere(id)) << id;
  }
  for (const char* id : {"Q1", "Q2", "Q4", "Q5", "Q6", "Q8", "Q11"}) {
    EXPECT_TRUE(SupportedAnywhere(id)) << id;
  }
}

TEST_F(VoltSupportTest, NoSingleSchemeCoversHalfTheJoins) {
  // §IX-D2: "using any single partitioning scheme less than 50% of the
  // TPC-W joins are supported" — three schemes were needed.
  for (const PartitionScheme& scheme : schemes_) {
    int supported = 0;
    for (const std::string& id : tpcw::JoinQueryIds()) {
      const auto& sel =
          std::get<sql::SelectStatement>(workload_.Find(id)->ast);
      if (IsSupported(sel, catalog_, scheme)) ++supported;
    }
    EXPECT_LT(supported, 6) << scheme.name;
  }
}

TEST_F(VoltSupportTest, SingleTableAlwaysSupported) {
  for (const std::string& id : tpcw::SingleTableReadIds()) {
    EXPECT_TRUE(SupportedAnywhere(id)) << id;
  }
}

class VoltDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Init(tpcw::BuildCatalog()).ok());
    tpcw::ScaleConfig cfg;
    cfg.num_customers = 30;
    ASSERT_TRUE(tpcw::GenerateDatabase(
                    cfg,
                    [&](const std::string& rel, const exec::Tuple& t) {
                      return db_.Load(rel, t);
                    })
                    .ok());
    workload_ = tpcw::BuildWorkload();
    cfg_ = cfg;
  }

  VoltDb db_;
  sql::Workload workload_;
  tpcw::ScaleConfig cfg_;
};

TEST_F(VoltDbTest, SupportedJoinExecutes) {
  auto r = db_.Execute(workload_.Find("Q1")->ast, {Value(5)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->rows, 0u);
  EXPECT_GT(r->virtual_ms, 0.0);
  EXPECT_EQ(r->scheme, "P2-item");
}

TEST_F(VoltDbTest, UnsupportedJoinRejected) {
  auto r = db_.Execute(workload_.Find("Q7")->ast, {Value(5)});
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(VoltDbTest, WritesExecuteQuickly) {
  auto r = db_.Execute(workload_.Find("W11")->ast, {Value(99), Value(1)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LT(r->virtual_ms, 10.0);  // in-memory write
}

TEST_F(VoltDbTest, InMemoryJoinIsFast) {
  auto r = db_.Execute(workload_.Find("Q2")->ast, {Value("USER3")});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LT(r->virtual_ms, 100.0);
}

TEST_F(VoltDbTest, DbSizeIsPositive) { EXPECT_GT(db_.DbSizeBytes(), 0.0); }

}  // namespace
}  // namespace synergy::newsql
