// Integration tests across the five evaluated systems at small scale:
// every workload statement runs on every system, and the paper's headline
// orderings hold.
#include "systems/evaluated_system.h"

#include <gtest/gtest.h>

#include "systems/harness.h"
#include "systems/mvcc_system.h"
#include "tpcw/workload.h"

namespace synergy::systems {
namespace {

class SystemsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scale_ = new tpcw::ScaleConfig();
    scale_->num_customers = 40;
    systems_ = new std::map<SystemKind, std::unique_ptr<EvaluatedSystem>>();
    for (const SystemKind kind : AllSystemKinds()) {
      auto system = MakeSystem(kind);
      ASSERT_TRUE(system->Setup(*scale_).ok()) << SystemKindName(kind);
      systems_->emplace(kind, std::move(system));
    }
  }
  static void TearDownTestSuite() {
    delete systems_;
    delete scale_;
  }

  static EvaluatedSystem& System(SystemKind kind) {
    return *systems_->at(kind);
  }

  double RunMs(SystemKind kind, const std::string& id) {
    tpcw::ParamProvider params(*scale_, /*seed=*/99);
    Measurement m = MeasureStatement(System(kind), params, id, 2);
    EXPECT_TRUE(m.error.ok()) << SystemKindName(kind) << " " << id << ": "
                              << m.error;
    EXPECT_TRUE(m.supported);
    return m.rt_ms.mean();
  }

  static tpcw::ScaleConfig* scale_;
  static std::map<SystemKind, std::unique_ptr<EvaluatedSystem>>* systems_;
};

tpcw::ScaleConfig* SystemsTest::scale_ = nullptr;
std::map<SystemKind, std::unique_ptr<EvaluatedSystem>>* SystemsTest::systems_ =
    nullptr;

TEST_F(SystemsTest, EveryStatementRunsOnEveryHBaseSystem) {
  sql::Workload w = tpcw::BuildWorkload();
  for (const SystemKind kind : HBaseBackedKinds()) {
    tpcw::ParamProvider params(*scale_, /*seed=*/5);
    for (const sql::WorkloadStatement& stmt : w.statements) {
      Measurement m = MeasureStatement(System(kind), params, stmt.id, 1);
      EXPECT_TRUE(m.error.ok())
          << SystemKindName(kind) << " " << stmt.id << ": " << m.error;
    }
  }
}

TEST_F(SystemsTest, VoltDbRunsSupportedStatementsOnly) {
  tpcw::ParamProvider params(*scale_, /*seed=*/5);
  std::set<std::string> unsupported;
  for (const std::string& id : tpcw::JoinQueryIds()) {
    Measurement m = MeasureStatement(System(SystemKind::kVoltDb), params, id, 1);
    ASSERT_TRUE(m.error.ok()) << id << ": " << m.error;
    if (!m.supported) unsupported.insert(id);
  }
  EXPECT_EQ(unsupported,
            (std::set<std::string>{"Q3", "Q7", "Q9", "Q10"}));
}

TEST_F(SystemsTest, SynergyBeatsBaselineOnJoins) {
  for (const char* id : {"Q1", "Q2", "Q4", "Q8"}) {
    EXPECT_LT(RunMs(SystemKind::kSynergy, id),
              RunMs(SystemKind::kBaseline, id))
        << id;
  }
}

TEST_F(SystemsTest, SynergyBeatsMvccAOnJoins) {
  // Marginal on the scan itself; decisive via the absent MVCC tax.
  double synergy = 0, mvcc_a = 0;
  for (const char* id : {"Q1", "Q2", "Q4", "Q6"}) {
    synergy += RunMs(SystemKind::kSynergy, id);
    mvcc_a += RunMs(SystemKind::kMvccA, id);
  }
  EXPECT_LT(synergy, mvcc_a);
}

TEST_F(SystemsTest, VoltDbFastestOnSupportedJoins) {
  for (const char* id : {"Q1", "Q2", "Q4"}) {
    EXPECT_LT(RunMs(SystemKind::kVoltDb, id), RunMs(SystemKind::kSynergy, id))
        << id;
  }
}

TEST_F(SystemsTest, SynergyWritesCheaperThanMvccWrites) {
  for (const char* id : {"W1", "W3", "W6", "W13"}) {
    EXPECT_LT(RunMs(SystemKind::kSynergy, id),
              RunMs(SystemKind::kBaseline, id))
        << id;
    EXPECT_LT(RunMs(SystemKind::kSynergy, id), RunMs(SystemKind::kMvccA, id))
        << id;
  }
}

TEST_F(SystemsTest, VoltDbWritesCheapest) {
  EXPECT_LT(RunMs(SystemKind::kVoltDb, "W1"), RunMs(SystemKind::kSynergy, "W1"));
}

TEST_F(SystemsTest, ShoppingCartWritesAreCheapInSynergy) {
  // W6/W11 touch a relation outside every view (paper's observation).
  const double w6 = RunMs(SystemKind::kSynergy, "W6");
  const double w13 = RunMs(SystemKind::kSynergy, "W13");
  EXPECT_LT(w6, w13);
}

TEST_F(SystemsTest, DbSizeOrderingMatchesTableIII) {
  const double volt = System(SystemKind::kVoltDb).DbSizeBytes();
  const double baseline = System(SystemKind::kBaseline).DbSizeBytes();
  const double mvcc_ua = System(SystemKind::kMvccUA).DbSizeBytes();
  const double mvcc_a = System(SystemKind::kMvccA).DbSizeBytes();
  const double synergy = System(SystemKind::kSynergy).DbSizeBytes();
  EXPECT_LT(volt, baseline);
  EXPECT_LE(baseline, mvcc_ua);
  EXPECT_LT(mvcc_ua, mvcc_a);
  // Synergy ~ MVCC-A (same views; Synergy adds lock tables).
  EXPECT_GE(synergy, mvcc_a * 0.95);
  // Views roughly double the footprint (paper: 2.1x).
  EXPECT_GT(synergy, baseline * 1.3);
}

TEST_F(SystemsTest, SynergySelectsTheExpectedTpcwViews) {
  auto views = System(SystemKind::kSynergy).ViewNames();
  std::set<std::string> names(views.begin(), views.end());
  EXPECT_TRUE(names.contains("Customer-Orders"));
  EXPECT_TRUE(names.contains("Author-Item"));
  EXPECT_TRUE(names.contains("Item-Order_line"));
  EXPECT_TRUE(names.contains("Author-Item-Order_line"));
  EXPECT_TRUE(names.contains("Country-Address"));
}

TEST_F(SystemsTest, UnawareSelectorPicksFewSmallViews) {
  auto views = System(SystemKind::kMvccUA).ViewNames();
  EXPECT_GE(views.size(), 1u);
  EXPECT_LE(views.size(), 3u);
}

TEST_F(SystemsTest, BaselineHasNoViews) {
  EXPECT_TRUE(System(SystemKind::kBaseline).ViewNames().empty());
}

TEST_F(SystemsTest, MvccTaxDominatesShortStatements) {
  // Any baseline statement carries the ~800-900 ms Tephra overhead.
  EXPECT_GT(RunMs(SystemKind::kBaseline, "S1"), 500.0);
  EXPECT_LT(RunMs(SystemKind::kSynergy, "S1"), 100.0);
}

TEST_F(SystemsTest, QueryResultsAgreeAcrossSystems) {
  // Row counts for deterministic queries must match across systems.
  tpcw::ParamProvider p1(*scale_, 123), p2(*scale_, 123), p3(*scale_, 123);
  for (const char* id : {"Q1", "Q4", "Q6", "Q8", "S7"}) {
    auto params = p1.ParamsFor(id);
    ASSERT_TRUE(params.ok());
    auto a = System(SystemKind::kBaseline).Execute(id, *params);
    auto b = System(SystemKind::kSynergy).Execute(id, *params);
    auto c = System(SystemKind::kMvccA).Execute(id, *params);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << id;
    EXPECT_EQ(a->rows, b->rows) << id;
    EXPECT_EQ(a->rows, c->rows) << id;
  }
}

}  // namespace
}  // namespace synergy::systems
