// Planner behaviour: access-path choice, greedy join ordering, cardinality
// hints, and the INL-vs-hash decision.
#include "exec/planner.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace synergy::exec {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto must = [](Status s) { ASSERT_TRUE(s.ok()) << s; };
    must(catalog_.AddRelation({.name = "Parent",
                               .columns = {{"p_id", DataType::kInt},
                                           {"p_tag", DataType::kString}},
                               .primary_key = {"p_id"}}));
    must(catalog_.AddRelation({.name = "Child",
                               .columns = {{"c_id", DataType::kInt},
                                           {"c_p_id", DataType::kInt},
                                           {"c_tag", DataType::kString}},
                               .primary_key = {"c_id"},
                               .foreign_keys = {{{"c_p_id"}, "Parent"}}}));
    must(catalog_.AddIndex({.name = "ix_child_p",
                            .relation = "Child",
                            .indexed_columns = {"c_p_id"},
                            .covered_columns = {"c_p_id", "c_id", "c_tag"},
                            .cardinality = sql::IndexCardinality::kHigh}));
    must(catalog_.AddIndex({.name = "ix_parent_tag",
                            .relation = "Parent",
                            .indexed_columns = {"p_tag"},
                            .covered_columns = {"p_tag", "p_id"},
                            .cardinality = sql::IndexCardinality::kLow}));
    rows_["Parent"] = 10000;
    rows_["Child"] = 100000;
  }

  SelectPlan Plan(const std::string& sql, PlannerOptions options = {}) {
    stmts_.push_back(sql::MustParse(sql));
    auto plan = PlanSelect(std::get<sql::SelectStatement>(stmts_.back()),
                           catalog_,
                           [&](const std::string& r) { return rows_[r]; },
                           options);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? std::move(*plan) : SelectPlan{};
  }

  sql::Catalog catalog_;
  std::map<std::string, size_t> rows_;
  std::vector<sql::Statement> stmts_;
};

TEST_F(PlannerTest, FullPkEqualityIsPkGet) {
  auto plan = Plan("SELECT p_id FROM Parent WHERE p_id = 7");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].path.kind, AccessPath::Kind::kPkGet);
  EXPECT_EQ(plan.steps[0].estimated_rows, 1.0);
}

TEST_F(PlannerTest, CoveredIndexPrefixScanChosen) {
  auto plan = Plan("SELECT p_id FROM Parent WHERE p_tag = 'x'");
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].path.kind, AccessPath::Kind::kIndexPrefixScan);
  EXPECT_EQ(plan.steps[0].path.index_name, "ix_parent_tag");
  // kLow cardinality -> rows/20.
  EXPECT_DOUBLE_EQ(plan.steps[0].estimated_rows, 10000.0 / 20.0);
}

TEST_F(PlannerTest, IndexNotUsedWhenItDoesNotCover) {
  // SELECT * needs p_tag AND p_id — ix_parent_tag covers both, but a
  // filter on an uncovered need falls back to a full scan.
  auto plan = Plan("SELECT * FROM Child WHERE c_tag = 'x'");
  EXPECT_EQ(plan.steps[0].path.kind, AccessPath::Kind::kFullScan);
}

TEST_F(PlannerTest, GreedyOrderStartsAtMostSelectiveTable) {
  // Child has the filter with the highest selectivity? No: Parent PK get.
  auto plan = Plan(
      "SELECT * FROM Child as c, Parent as p "
      "WHERE c.c_p_id = p.p_id AND p.p_id = 3");
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].table.table, "Parent");
  EXPECT_EQ(plan.steps[1].method, PlanStep::Method::kIndexNestedLoop);
  EXPECT_EQ(plan.steps[1].lookup.index_name, "ix_child_p");
}

TEST_F(PlannerTest, HashJoinForUnfilteredJoin) {
  auto plan = Plan(
      "SELECT p.p_id FROM Parent as p, Child as c WHERE p.p_id = c.c_p_id");
  ASSERT_EQ(plan.steps.size(), 2u);
  // Both sides full scans -> big outer estimate -> hash join.
  EXPECT_EQ(plan.steps[1].method, PlanStep::Method::kHashJoin);
}

TEST_F(PlannerTest, ForceHashJoinOverridesInl) {
  PlannerOptions options;
  options.force_hash_join = true;
  auto plan = Plan(
      "SELECT * FROM Parent as p, Child as c "
      "WHERE p.p_id = c.c_p_id AND p.p_id = 3",
      options);
  EXPECT_EQ(plan.steps[1].method, PlanStep::Method::kHashJoin);
}

TEST_F(PlannerTest, ConstFilterOnInlInnerStaysResidual) {
  // Regression: a constant filter must survive the INL path replacement.
  auto plan = Plan(
      "SELECT * FROM Parent as p, Child as c "
      "WHERE p.p_id = c.c_p_id AND p.p_id = 3 AND c.c_tag = 'keep'");
  ASSERT_EQ(plan.steps.size(), 2u);
  ASSERT_EQ(plan.steps[1].method, PlanStep::Method::kIndexNestedLoop);
  bool found = false;
  for (const sql::Predicate* pred : plan.steps[1].residual) {
    if (pred->ToString().find("keep") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(PlannerTest, UnknownTableFails) {
  sql::Statement stmt = sql::MustParse("SELECT * FROM Nope");
  EXPECT_FALSE(PlanSelect(std::get<sql::SelectStatement>(stmt), catalog_,
                          nullptr, {})
                   .ok());
}

TEST_F(PlannerTest, UnresolvableColumnFails) {
  sql::Statement stmt = sql::MustParse("SELECT * FROM Parent WHERE ghost = 1");
  EXPECT_FALSE(PlanSelect(std::get<sql::SelectStatement>(stmt), catalog_,
                          nullptr, {})
                   .ok());
}

TEST_F(PlannerTest, ExplainMentionsMethodAndPath) {
  auto plan = Plan(
      "SELECT * FROM Parent as p, Child as c "
      "WHERE p.p_id = c.c_p_id AND p.p_id = 3");
  const std::string text = plan.Explain();
  EXPECT_NE(text.find("PK_GET"), std::string::npos);
  EXPECT_NE(text.find("INDEX_NESTED_LOOP"), std::string::npos);
}

TEST_F(PlannerTest, CrossJoinFallsBackToHashJoinWithoutKeys) {
  auto plan = Plan("SELECT p.p_id FROM Parent as p, Child as c");
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[1].method, PlanStep::Method::kHashJoin);
  EXPECT_TRUE(plan.steps[1].equi_joins.empty());
}

}  // namespace
}  // namespace synergy::exec
