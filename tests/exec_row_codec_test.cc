#include "exec/row_codec.h"

#include <gtest/gtest.h>

namespace synergy::exec {
namespace {

sql::RelationDef Rel() {
  return sql::RelationDef{
      .name = "T",
      .columns = {{"id", DataType::kInt},
                  {"name", DataType::kString},
                  {"score", DataType::kDouble}},
      .primary_key = {"id"}};
}

TEST(RowCodecTest, PkKeyRoundTrip) {
  auto rel = Rel();
  Tuple t{{"id", Value(7)}, {"name", Value("x")}};
  auto key = EncodePkKey(rel, t);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, EncodePkKeyFromValues({Value(7)}));
}

TEST(RowCodecTest, MissingPkFails) {
  auto rel = Rel();
  Tuple t{{"name", Value("x")}};
  EXPECT_FALSE(EncodePkKey(rel, t).ok());
}

TEST(RowCodecTest, RowValueRoundTrip) {
  auto rel = Rel();
  Tuple t{{"id", Value(1)}, {"name", Value("bob")}, {"score", Value(2.5)}};
  std::string bytes = EncodeRowValue(rel, t);
  auto decoded = DecodeRowValue(rel.columns, bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at("id"), Value(1));
  EXPECT_EQ(decoded->at("name"), Value("bob"));
  EXPECT_EQ(decoded->at("score"), Value(2.5));
}

TEST(RowCodecTest, MissingColumnsDecodeAsAbsent) {
  auto rel = Rel();
  Tuple t{{"id", Value(1)}};
  auto decoded = DecodeRowValue(rel.columns, EncodeRowValue(rel, t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 1u);
  EXPECT_FALSE(decoded->contains("name"));
}

TEST(RowCodecTest, IndexKeyIncludesPkSuffix) {
  auto rel = Rel();
  sql::IndexDef ix{.name = "ix_name",
                   .relation = "T",
                   .indexed_columns = {"name"},
                   .covered_columns = {"name", "id"}};
  Tuple a{{"id", Value(1)}, {"name", Value("bob")}};
  Tuple b{{"id", Value(2)}, {"name", Value("bob")}};
  auto ka = EncodeIndexKey(ix, rel, a);
  auto kb = EncodeIndexKey(ix, rel, b);
  ASSERT_TRUE(ka.ok());
  ASSERT_TRUE(kb.ok());
  EXPECT_NE(*ka, *kb);  // same indexed value, different PK
  EXPECT_LT(*ka, *kb);
}

TEST(RowCodecTest, IndexPrefixRangeCoversAllPks) {
  auto rel = Rel();
  sql::IndexDef ix{.name = "ix_name",
                   .relation = "T",
                   .indexed_columns = {"name"},
                   .covered_columns = {"name", "id"}};
  auto [start, stop] = IndexPrefixRange({Value("bob")});
  for (int id : {1, 50, 999}) {
    Tuple t{{"id", Value(id)}, {"name", Value("bob")}};
    auto key = EncodeIndexKey(ix, rel, t);
    ASSERT_TRUE(key.ok());
    EXPECT_GE(*key, start);
    EXPECT_LT(*key, stop);
  }
  Tuple other{{"id", Value(1)}, {"name", Value("carol")}};
  auto key = EncodeIndexKey(ix, rel, other);
  ASSERT_TRUE(key.ok());
  EXPECT_GE(*key, stop);
}

TEST(RowCodecTest, ProjectedValueUsesGivenOrder) {
  auto rel = Rel();
  Tuple t{{"id", Value(3)}, {"name", Value("x")}, {"score", Value(1.0)}};
  std::vector<std::string> cols = {"score", "id"};
  std::string bytes = EncodeProjectedValue(cols, rel, t);
  auto decoded = DecodeRowValue(ProjectColumns(rel, cols), bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->at("score"), Value(1.0));
  EXPECT_EQ(decoded->at("id"), Value(3));
  EXPECT_FALSE(decoded->contains("name"));
}

}  // namespace
}  // namespace synergy::exec
