// Cross-plan equivalence: for every TPC-W join query, executing the
// Synergy-rewritten statement (views + view-indexes + INL/hash plans) must
// return exactly the same number of rows as executing the original
// statement over base tables with forced hash joins. This pins the whole
// pipeline — candidate generation, selection, rewriting, maintenance,
// planning, execution — to relational semantics.
#include <gtest/gtest.h>

#include "synergy/synergy_system.h"
#include "tpcw/generator.h"
#include "tpcw/schema.h"
#include "tpcw/workload.h"

namespace synergy::core {
namespace {

class PlanEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new hbase::Cluster();
    system_ = new SynergySystem(cluster_, {.roots = tpcw::Roots()});
    ASSERT_TRUE(
        system_->Build(tpcw::BuildCatalog(), tpcw::BuildWorkload()).ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    scale_ = new tpcw::ScaleConfig();
    scale_->num_customers = 60;
    hbase::Session load(cluster_);
    ASSERT_TRUE(tpcw::GenerateDatabase(*scale_, [&](const std::string& rel,
                                                    const exec::Tuple& t) {
                  return system_->Load(load, rel, t);
                }).ok());
    base_workload_ = new sql::Workload(tpcw::BuildWorkload());
  }
  static void TearDownTestSuite() {
    delete base_workload_;
    delete scale_;
    delete system_;
    delete cluster_;
  }

  size_t Run(const sql::Statement& stmt, const std::vector<Value>& params,
             bool force_hash) {
    exec::Executor executor(system_->adapter());
    hbase::Session s(cluster_);
    exec::ExecOptions opts;
    opts.collect_rows = false;
    opts.force_hash_join = force_hash;
    auto result = executor.ExecuteSelect(
        s, std::get<sql::SelectStatement>(stmt), params, opts);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->row_count : SIZE_MAX;
  }

  static hbase::Cluster* cluster_;
  static SynergySystem* system_;
  static tpcw::ScaleConfig* scale_;
  static sql::Workload* base_workload_;
};

hbase::Cluster* PlanEquivalenceTest::cluster_ = nullptr;
SynergySystem* PlanEquivalenceTest::system_ = nullptr;
tpcw::ScaleConfig* PlanEquivalenceTest::scale_ = nullptr;
sql::Workload* PlanEquivalenceTest::base_workload_ = nullptr;

TEST_P(PlanEquivalenceTest, RewrittenMatchesBaseTables) {
  const std::string id = GetParam();
  const sql::WorkloadStatement* rewritten = system_->workload().Find(id);
  const sql::WorkloadStatement* original = base_workload_->Find(id);
  ASSERT_NE(rewritten, nullptr);
  ASSERT_NE(original, nullptr);
  tpcw::ParamProvider p1(*scale_, 77), p2(*scale_, 77);
  for (int trial = 0; trial < 4; ++trial) {
    auto params1 = p1.ParamsFor(id);
    auto params2 = p2.ParamsFor(id);
    ASSERT_TRUE(params1.ok());
    ASSERT_TRUE(params2.ok());
    // Same seed -> identical params for both sides.
    const size_t via_views = Run(rewritten->ast, *params1, false);
    const size_t via_base = Run(original->ast, *params2, true);
    EXPECT_EQ(via_views, via_base) << id << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(TpcwJoins, PlanEquivalenceTest,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5", "Q6",
                                           "Q7", "Q8", "Q9", "Q10", "Q11"));

}  // namespace
}  // namespace synergy::core
