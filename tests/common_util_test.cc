#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/str_util.h"

namespace synergy {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing row");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Aborted("conflict"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kAborted);
}

TEST(StrUtilTest, SplitBasic) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, SplitEmptyFields) {
  auto parts = SplitString(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.Uniform(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
  }
}

TEST(StatsTest, MeanAndStderr) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.mean(), 5.0, 1e-9);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_GT(s.stderr_mean(), 0.0);
}

TEST(StatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace synergy
