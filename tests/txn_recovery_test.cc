// Recovery regression tests for the failure modes of §VIII-C:
//
//  1. Orphaned CheckAndPut locks: a slave crashes holding a root lock;
//     other clients must stay blocked (read-committed) until master
//     failover releases the lock, after which they make progress.
//  2. WAL replay idempotency: replaying the same log twice leaves the base
//     tables and every materialized view byte-identical — replay after an
//     ack-lost or partially-applied write must be harmless.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "company_fixture.h"
#include "synergy/synergy_system.h"
#include "synergy/view_audit.h"
#include "testing/fault_injector.h"
#include "txn/txn_layer.h"

namespace synergy::core {
namespace {

// ---------------------------------------------------------------------------
// 1. Orphaned-lock recovery, at the txn-layer level for full control of the
//    LockSpec and the blocked second client.
// ---------------------------------------------------------------------------

TEST(OrphanedLockRecoveryTest, RecoveryFreesLockAndUnblocksSecondClient) {
  hbase::Cluster cluster;
  ASSERT_TRUE(cluster.CreateTable({.name = "data"}).ok());
  txn::LockManager locks(&cluster);
  ASSERT_TRUE(locks.CreateLockTable("Root").ok());
  txn::TxnLayer layer(&cluster, &locks, 2);
  fault::FaultInjector faults(17);
  layer.SetFaultInjector(&faults);
  hbase::Session s(&cluster);

  // Client A crashes holding the root lock, before its body runs.
  faults.Arm(fault::FaultPoint::kCrashBeforeExecute);
  auto crashed = layer.SubmitWrite(
      s, "put a 1", txn::LockSpec{"Root", "rk"},
      [&](hbase::Session& bs) {
        return cluster.Put(bs, "data", "a", {{"v", "1"}});
      });
  ASSERT_EQ(crashed.status().code(), StatusCode::kUnavailable);

  // The CheckAndPut lock is orphaned: client B cannot acquire it and times
  // out (read-committed is preserved while the owner is dead).
  auto held = locks.IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_TRUE(*held);
  const Status blocked = locks.Acquire(s, "Root", "rk", /*max_attempts=*/3);
  EXPECT_EQ(blocked.code(), StatusCode::kAborted) << blocked;

  // Master failover replays the entry and releases the recorded lock.
  ASSERT_TRUE(layer
                  .DetectAndRecover(
                      s,
                      [&](hbase::Session& rs, const std::string& payload) {
                        EXPECT_EQ(payload, "put a 1");
                        return cluster.Put(rs, "data", "a", {{"v", "1"}});
                      })
                  .ok());
  held = locks.IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);

  // Client B now progresses: same lock, clean commit.
  auto ok = layer.SubmitWrite(
      s, "put b 2", txn::LockSpec{"Root", "rk"},
      [&](hbase::Session& bs) {
        return cluster.Put(bs, "data", "b", {{"v", "2"}});
      });
  ASSERT_TRUE(ok.ok()) << ok.status();
  held = locks.IsHeld(s, "Root", "rk");
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(*held);
}

// ---------------------------------------------------------------------------
// 2. WAL double-replay idempotency, at the system level: replaying the full
//    log a second time must not change any base table or view.
// ---------------------------------------------------------------------------

class WalDoubleReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots(),
                                 .txn_slaves = 2});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    for (int a = 1; a <= 4; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("s" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    ASSERT_TRUE(system_
                    ->Load(s, "Department",
                           {{"DNo", Value(1)}, {"DName", Value("d")}})
                    .ok());
    for (int e = 1; e <= 3; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("e" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(4)},
                              {"E_DNo", Value(1)}})
                      .ok());
    }
  }

  Status Write(const std::string& sql, std::vector<Value> params) {
    stmts_.push_back(sql::MustParse(sql));
    hbase::Session s(&cluster_);
    return system_->ExecuteWrite(s, stmts_.back(), params).status();
  }

  /// Sorted row fingerprints of every base table and view in the catalog.
  std::map<std::string, std::vector<std::string>> Snapshot() {
    std::map<std::string, std::vector<std::string>> tables;
    hbase::Session s(&cluster_);
    const sql::Catalog& catalog = system_->adapter()->catalog();
    std::vector<std::string> names;
    for (const sql::RelationDef* rel : catalog.Relations())
      names.push_back(rel->name);
    for (const sql::ViewDef* view : catalog.Views())
      names.push_back(view->name);
    for (const std::string& name : names) {
      auto scanner = system_->adapter()->ScanAll(s, name);
      EXPECT_TRUE(scanner.ok()) << name << ": " << scanner.status();
      if (!scanner.ok()) continue;
      std::vector<std::string> rows;
      exec::SlotRow row;
      while (true) {
        auto more = scanner->NextSlots(&row);
        EXPECT_TRUE(more.ok()) << name << ": " << more.status();
        if (!more.ok() || !*more) break;
        std::string fp;
        for (const Value& v : row.values) {
          fp += v.is_null() ? std::string(1, '\0') : v.ToString();
          fp += '\x1f';
        }
        rows.push_back(std::move(fp));
      }
      std::sort(rows.begin(), rows.end());
      tables[name] = std::move(rows);
    }
    return tables;
  }

  Status Recover() {
    hbase::Session s(&cluster_);
    return system_->txn_layer()->DetectAndRecover(
        s, [&](hbase::Session& rs, const std::string& payload) {
          return system_->ReplayPayload(rs, payload);
        });
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
  std::vector<sql::Statement> stmts_;
};

TEST_F(WalDoubleReplayTest, ReplayingTheLogTwiceChangesNothing) {
  // A few committed writes (distinct keys, so replay order is immaterial).
  ASSERT_TRUE(Write("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                    "VALUES (?, ?, ?)",
                    {Value(1), Value(1), Value(10)})
                  .ok());
  ASSERT_TRUE(Write("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                    "VALUES (?, ?, ?)",
                    {Value(2), Value(2), Value(20)})
                  .ok());

  // Two more writes whose lock-release RPC is lost: the bodies applied, the
  // slaves died with the entries uncommitted.
  fault::FaultInjector faults(99);
  system_->SetFaultInjector(&faults);
  faults.Arm(fault::FaultPoint::kDropLockRelease, /*skip_hits=*/0,
             /*max_fires=*/2);
  // The two writes hit disjoint root rows so the second is not blocked on
  // the first crash's orphaned lock.
  EXPECT_EQ(Write("UPDATE Employee SET EName = ? WHERE EID = ?",
                  {Value("renamed"), Value(3)})
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(Write("UPDATE Address SET Street = ? WHERE AID = ?",
                  {Value("relocated"), Value(2)})
                .code(),
            StatusCode::kUnavailable);
  faults.DisarmAll();

  // Capture the full log (all slaves) before failover marks it committed.
  std::vector<std::string> log;
  txn::TxnLayer* layer = system_->txn_layer();
  for (int i = 0; i < layer->num_slaves(); ++i) {
    for (const txn::WalEntry& e : layer->slave(i)->wal()->AllEntries()) {
      log.push_back(e.payload);
    }
  }
  ASSERT_EQ(log.size(), 4u);

  // First replay: failover re-applies the uncommitted suffix (the bodies'
  // second application) and releases the orphaned locks.
  ASSERT_TRUE(Recover().ok());
  hbase::Session audit_session(&cluster_);
  auto report = AuditViewConsistency(audit_session, system_->adapter());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->consistent()) << report->ToString();
  const auto before = Snapshot();
  EXPECT_EQ(before.at("Works_On").size(), 2u);
  // Both partially-failed bodies are durable after replay.
  EXPECT_NE(before.at("Employee")[2].find("renamed"), std::string::npos);
  EXPECT_NE(before.at("Address")[1].find("relocated"), std::string::npos);

  // Second replay of the *entire* log, committed entries included.
  hbase::Session s(&cluster_);
  for (const std::string& payload : log) {
    ASSERT_TRUE(system_->ReplayPayload(s, payload).ok()) << payload;
  }

  // Byte-identical base tables and views, and the §VII invariant holds.
  const auto after = Snapshot();
  EXPECT_EQ(before, after);
  report = AuditViewConsistency(s, system_->adapter());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->consistent()) << report->ToString();
}

}  // namespace
}  // namespace synergy::core
