#include "hbase/region.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace synergy::hbase {
namespace {

ReadView Now() { return ReadView{}; }
std::atomic<int64_t> clock{0};

TEST(RegionTest, PutGetRoundTrip) {
  Region r("", "", &clock);
  r.Put("k1", {{"a", "1"}, {"b", "2"}}, 1);
  auto row = r.Get("k1", Now());
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->columns.at("a"), "1");
  EXPECT_EQ(row->columns.at("b"), "2");
}

TEST(RegionTest, GetMissingRow) {
  Region r("", "", &clock);
  EXPECT_FALSE(r.Get("nope", Now()).has_value());
}

TEST(RegionTest, DeleteHidesRow) {
  Region r("", "", &clock);
  r.Put("k", {{"a", "1"}}, 1);
  r.Delete("k", 2);
  EXPECT_FALSE(r.Get("k", Now()).has_value());
}

TEST(RegionTest, DeleteColumnKeepsSiblings) {
  Region r("", "", &clock);
  r.Put("k", {{"a", "1"}, {"b", "2"}}, 1);
  r.DeleteColumn("k", "a", 2);
  auto row = r.Get("k", Now());
  ASSERT_TRUE(row.has_value());
  EXPECT_FALSE(row->columns.contains("a"));
  EXPECT_EQ(row->columns.at("b"), "2");
}

TEST(RegionTest, ContainsRespectsRange) {
  Region r("b", "m", &clock);
  EXPECT_TRUE(r.Contains("b"));
  EXPECT_TRUE(r.Contains("cat"));
  EXPECT_FALSE(r.Contains("m"));
  EXPECT_FALSE(r.Contains("a"));
  Region unbounded("", "", &clock);
  EXPECT_TRUE(unbounded.Contains("anything"));
}

TEST(RegionTest, CheckAndPutSucceedsOnMatch) {
  Region r("", "", &clock);
  EXPECT_TRUE(r.CheckAndPut("k", "lock", std::nullopt, "1"));
  EXPECT_FALSE(r.CheckAndPut("k", "lock", std::nullopt, "1"));
  EXPECT_TRUE(r.CheckAndPut("k", "lock", "1", "0"));
  auto row = r.Get("k", Now());
  EXPECT_EQ(row->columns.at("lock"), "0");
}

TEST(RegionTest, CheckAndPutIsMutuallyExclusiveUnderThreads) {
  Region r("", "", &clock);
  r.Put("k", {{"lock", "0"}}, 1);
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      if (r.CheckAndPut("k", "lock", "0", "1")) winners.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(RegionTest, IncrementAccumulates) {
  Region r("", "", &clock);
  auto v1 = r.Increment("k", "n", 5);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 5);
  auto v2 = r.Increment("k", "n", -2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 3);
}

TEST(RegionTest, IncrementRejectsNonInteger) {
  Region r("", "", &clock);
  r.Put("k", {{"n", "abc"}}, 1);
  EXPECT_FALSE(r.Increment("k", "n", 1).ok());
}

TEST(RegionTest, ScanBatchReturnsSortedRange) {
  Region r("", "", &clock);
  for (const char* k : {"d", "a", "c", "b", "e"}) r.Put(k, {{"v", k}}, 1);
  auto batch = r.ScanBatch("b", "e", 100, Now());
  ASSERT_EQ(batch.rows.size(), 3u);
  EXPECT_EQ(batch.rows[0].row_key, "b");
  EXPECT_EQ(batch.rows[2].row_key, "d");
  EXPECT_TRUE(batch.exhausted);
}

TEST(RegionTest, ScanBatchHonorsLimitAndResumes) {
  Region r("", "", &clock);
  for (const char* k : {"a", "b", "c", "d"}) r.Put(k, {{"v", k}}, 1);
  auto batch = r.ScanBatch("", "", 2, Now());
  ASSERT_EQ(batch.rows.size(), 2u);
  EXPECT_FALSE(batch.exhausted);
  EXPECT_EQ(batch.next_start_key, "c");
  auto batch2 = r.ScanBatch(batch.next_start_key, "", 10, Now());
  ASSERT_EQ(batch2.rows.size(), 2u);
  EXPECT_TRUE(batch2.exhausted);
}

TEST(RegionTest, ScanSkipsDeletedRowsButCountsThem) {
  Region r("", "", &clock);
  r.Put("a", {{"v", "1"}}, 1);
  r.Put("b", {{"v", "2"}}, 1);
  r.Delete("a", 2);
  auto batch = r.ScanBatch("", "", 10, Now());
  ASSERT_EQ(batch.rows.size(), 1u);
  EXPECT_EQ(batch.rows[0].row_key, "b");
  EXPECT_EQ(batch.rows_examined, 2u);
}

TEST(RegionTest, MajorCompactRemovesDeletedRows) {
  Region r("", "", &clock);
  r.Put("a", {{"v", "1"}}, 1);
  r.Delete("a", 2);
  r.MajorCompact(3);
  EXPECT_EQ(r.RowCount(), 0u);
}

TEST(RegionTest, SplitMovesUpperRows) {
  Region left("", "", &clock);
  for (const char* k : {"a", "b", "c", "d"}) left.Put(k, {{"v", k}}, 1);
  Region right("c", "", &clock);
  left.SplitInto("c", &right);
  left.SetEndKey("c");
  EXPECT_EQ(left.RowCount(), 2u);
  EXPECT_EQ(right.RowCount(), 2u);
  EXPECT_TRUE(right.Get("d", Now()).has_value());
  EXPECT_FALSE(left.Contains("c"));
}

TEST(RegionTest, MedianKey) {
  Region r("", "", &clock);
  for (const char* k : {"a", "b", "c", "d"}) r.Put(k, {{"v", k}}, 1);
  EXPECT_EQ(r.MedianKey(), "c");
}

TEST(RegionTest, ConcurrentPutsAllLand) {
  Region r("", "", &clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 250; ++i) {
        r.Put("k" + std::to_string(t) + "_" + std::to_string(i),
              {{"v", "x"}}, t * 1000 + i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.RowCount(), 1000u);
}

}  // namespace
}  // namespace synergy::hbase
