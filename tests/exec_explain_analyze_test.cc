// EXPLAIN ANALYZE regression: the per-plan-node virtual-µs decomposition
// must reproduce the cost-meter total — exactly in the clean case, and
// still within the 1% acceptance budget when dirty-read restarts fold
// aborted attempts into their pseudo-node. Also checks the trace-span and
// registry sides of the same statement.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "company_fixture.h"
#include "obs/trace.h"
#include "synergy/synergy_system.h"
#include "testing/fault_injector.h"

namespace synergy::core {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<SynergySystem>(
        &cluster_, SynergyConfig{.roots = testing::CompanyRoots()});
    ASSERT_TRUE(
        system_->Build(testing::CompanyCatalog(), testing::CompanyWorkload())
            .ok());
    ASSERT_TRUE(system_->CreateStorage().ok());
    hbase::Session s(&cluster_);
    for (int a = 1; a <= 4; ++a) {
      ASSERT_TRUE(system_
                      ->Load(s, "Address",
                             {{"AID", Value(a)},
                              {"Street", Value("st" + std::to_string(a))},
                              {"City", Value("c")},
                              {"Zip", Value("z")}})
                      .ok());
    }
    for (int d = 1; d <= 2; ++d) {
      ASSERT_TRUE(system_
                      ->Load(s, "Department",
                             {{"DNo", Value(d)},
                              {"DName", Value("dept" + std::to_string(d))}})
                      .ok());
    }
    for (int e = 1; e <= 3; ++e) {
      ASSERT_TRUE(system_
                      ->Load(s, "Employee",
                             {{"EID", Value(e)},
                              {"EName", Value("emp" + std::to_string(e))},
                              {"EHome_AID", Value(e)},
                              {"EOffice_AID", Value(4)},
                              {"E_DNo", Value(e % 2 + 1)}})
                      .ok());
    }
    for (int e = 1; e <= 3; ++e) {
      for (int p = 1; p <= (e % 2) + 1; ++p) {
        ASSERT_TRUE(system_
                        ->Load(s, "Works_On",
                               {{"WO_EID", Value(e)},
                                {"WO_PNo", Value(p)},
                                {"Hours", Value(10 * e + p)}})
                        .ok());
      }
    }
  }

  const sql::SelectStatement& Stmt(const std::string& id) {
    const sql::WorkloadStatement* stmt = system_->workload().Find(id);
    EXPECT_NE(stmt, nullptr);
    return std::get<sql::SelectStatement>(stmt->ast);
  }

  hbase::Cluster cluster_;
  std::unique_ptr<SynergySystem> system_;
};

TEST_F(ExplainAnalyzeTest, NodeSumMatchesMeterTotalOnJoin) {
  // W2: three-way join (Department ⋈ Employee ⋈ Works_On) — exercises the
  // multi-stage pipeline, not just a single view scan.
  hbase::Session s(&cluster_);
  const std::vector<Value> params{Value(1)};
  auto r = system_->ExplainAnalyzeRead(s, Stmt("W2"), params);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_GT(r->total_virtual_us, 0.0);
  ASSERT_GE(r->nodes.size(), 2u);  // at least source stage + sink

  double node_sum = 0.0;
  uint64_t node_rpcs = 0;
  for (const exec::PlanNodeStats& n : r->nodes) {
    node_sum += n.virtual_us;
    node_rpcs += n.rpcs;
    EXPECT_FALSE(n.label.empty());
    EXPECT_GE(n.virtual_us, 0.0);
  }
  EXPECT_DOUBLE_EQ(node_sum, r->node_sum_us);
  // Acceptance bound is 1%; the interval partition makes it fp-exact.
  EXPECT_NEAR(r->node_sum_us, r->total_virtual_us,
              0.01 * r->total_virtual_us);
  EXPECT_NEAR(r->node_sum_us, r->total_virtual_us,
              1e-6 * r->total_virtual_us + 1e-6);

  // Every store RPC is attributed to exactly one node.
  EXPECT_GT(r->total_rpcs, 0u);
  EXPECT_EQ(node_rpcs, r->total_rpcs);

  // Rendered table mentions every node and the totals cross-check line.
  EXPECT_NE(r->text.find("virtual_us="), std::string::npos);
  EXPECT_NE(r->text.find("total:"), std::string::npos);
  for (const exec::PlanNodeStats& n : r->nodes) {
    EXPECT_NE(r->text.find(n.label), std::string::npos) << n.label;
  }

  // The query itself still returns its rows.
  EXPECT_GT(r->result.row_count, 0u);
}

TEST_F(ExplainAnalyzeTest, RegistryCountersTrackStatements) {
  hbase::Session s(&cluster_);
  const uint64_t before =
      cluster_.metrics().Snapshot().CounterValue("exec_statements_total");
  const std::vector<Value> params{Value(2)};
  ASSERT_TRUE(system_->ExplainAnalyzeRead(s, Stmt("W1"), params).ok());
  const obs::RegistrySnapshot snap = cluster_.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("exec_statements_total"), before + 1);
  EXPECT_GE(snap.CounterValue("synergy_reads_total"), 1u);
  EXPECT_GT(snap.CounterValue("hbase_rpcs_total"), 0u);
}

TEST_F(ExplainAnalyzeTest, DirtyRestartFoldsAbortedAttemptIntoPseudoNode) {
  fault::FaultInjector faults(/*seed=*/7);
  system_->SetFaultInjector(&faults);
  // First clean-row scan hit aborts the statement once; the restart runs
  // clean. ExplainAnalyzeRead enables dirty-read detection.
  faults.Arm(fault::FaultPoint::kDirtyReadRestart, /*skip_hits=*/0,
             /*max_fires=*/1);

  hbase::Session s(&cluster_);
  const std::vector<Value> params{Value(1)};
  auto r = system_->ExplainAnalyzeRead(s, Stmt("W2"), params);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(faults.FireCount(fault::FaultPoint::kDirtyReadRestart), 1);

  ASSERT_FALSE(r->nodes.empty());
  const exec::PlanNodeStats& restart = r->nodes.front();
  EXPECT_EQ(restart.label, "dirty restarts");
  EXPECT_EQ(restart.rows, 1u);  // one aborted attempt
  EXPECT_GT(restart.virtual_us, 0.0);

  // The aborted attempt plus backoff is charged to the pseudo-node, so the
  // decomposition still balances.
  double node_sum = 0.0;
  for (const exec::PlanNodeStats& n : r->nodes) node_sum += n.virtual_us;
  EXPECT_NEAR(node_sum, r->total_virtual_us, 0.01 * r->total_virtual_us);
  EXPECT_GE(
      cluster_.metrics().Snapshot().CounterValue("exec_dirty_restarts_total"),
      1u);
}

TEST_F(ExplainAnalyzeTest, TraceSpansDecomposeStatementCost) {
  hbase::Session s(&cluster_);
  obs::TraceCollector trace(&s.meter());
  s.SetTrace(&trace);

  const double before_us = s.meter().micros();
  const std::vector<Value> params{Value(1)};
  ASSERT_TRUE(
      system_->ExecuteRead(s, Stmt("W2"), params, /*collect_rows=*/false)
          .ok());
  const double charged_us = s.meter().micros() - before_us;
  s.SetTrace(nullptr);

  // Root spans account for the whole statement's virtual cost.
  EXPECT_GT(charged_us, 0.0);
  EXPECT_NEAR(trace.RootUs(), charged_us, 1e-6 * charged_us + 1e-6);

  bool saw_synergy_read = false, saw_exec_select = false;
  for (const obs::TraceSpan& span : trace.spans()) {
    EXPECT_FALSE(span.open);
    if (span.name == "synergy.read") saw_synergy_read = true;
    if (span.name == "exec.select") saw_exec_select = true;
  }
  EXPECT_TRUE(saw_synergy_read);
  EXPECT_TRUE(saw_exec_select);
  EXPECT_NE(trace.Render().find("synergy.read"), std::string::npos);
}

}  // namespace
}  // namespace synergy::core
